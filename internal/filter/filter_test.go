package filter

import (
	"strings"
	"testing"
	"time"

	"apisense/internal/geo"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 10, 30, 0, 0, time.UTC)
)

func gpsRecord(pos geo.Point, ts time.Time) Record {
	return Record{
		Sensor: "gps",
		Time:   ts,
		Data:   map[string]any{"lat": pos.Lat, "lon": pos.Lon, "speed": 1.2},
	}
}

func TestSensorOptOut(t *testing.T) {
	rule := &SensorOptOut{Allowed: map[string]bool{"gps": true}}
	if _, keep := rule.Apply(gpsRecord(lyon, t0)); !keep {
		t.Error("allowed sensor dropped")
	}
	if _, keep := rule.Apply(Record{Sensor: "contacts", Time: t0}); keep {
		t.Error("disallowed sensor kept")
	}
}

func TestTimeWindow(t *testing.T) {
	day := &TimeWindow{StartHour: 8, EndHour: 20}
	tests := []struct {
		hour int
		want bool
	}{
		{7, false}, {8, true}, {12, true}, {19, true}, {20, false}, {23, false},
	}
	for _, tt := range tests {
		r := gpsRecord(lyon, time.Date(2014, 12, 8, tt.hour, 0, 0, 0, time.UTC))
		if _, keep := day.Apply(r); keep != tt.want {
			t.Errorf("hour %d: keep=%v, want %v", tt.hour, keep, tt.want)
		}
	}
	// Overnight window.
	night := &TimeWindow{StartHour: 22, EndHour: 6}
	for _, tt := range []struct {
		hour int
		want bool
	}{{23, true}, {2, true}, {6, false}, {12, false}, {22, true}} {
		r := gpsRecord(lyon, time.Date(2014, 12, 8, tt.hour, 0, 0, 0, time.UTC))
		if _, keep := night.Apply(r); keep != tt.want {
			t.Errorf("overnight hour %d: keep=%v, want %v", tt.hour, keep, tt.want)
		}
	}
}

func TestZoneExclusion(t *testing.T) {
	home := geo.Translate(lyon, 2000, 0)
	rule := &ZoneExclusion{Centers: []geo.Point{home}, Radius: 300}
	if _, keep := rule.Apply(gpsRecord(geo.Translate(home, 100, 0), t0)); keep {
		t.Error("record inside zone kept")
	}
	if _, keep := rule.Apply(gpsRecord(lyon, t0)); !keep {
		t.Error("record outside zone dropped")
	}
	// Records without location pass.
	if _, keep := rule.Apply(Record{Sensor: "battery", Time: t0, Data: map[string]any{"level": 80.0}}); !keep {
		t.Error("non-located record dropped")
	}
}

func TestLocationBlur(t *testing.T) {
	rule := &LocationBlur{CellSize: 400, Origin: lyon}
	in := gpsRecord(geo.Translate(lyon, 130, 170), t0)
	out, keep := rule.Apply(in)
	if !keep {
		t.Fatal("blurred record dropped")
	}
	lat := out.Data["lat"].(float64)
	lon := out.Data["lon"].(float64)
	blurred := geo.Point{Lat: lat, Lon: lon}
	orig := geo.Point{Lat: in.Data["lat"].(float64), Lon: in.Data["lon"].(float64)}
	if blurred == orig {
		t.Error("blur did not move the point")
	}
	if d := geo.Distance(blurred, orig); d > 400 {
		t.Errorf("blur moved point %f m, more than a cell", d)
	}
	// Input record untouched.
	if in.Data["lat"].(float64) != orig.Lat {
		t.Error("input mutated")
	}
	// Same cell points blur identically.
	in2 := gpsRecord(geo.Translate(lyon, 150, 150), t0)
	out2, _ := rule.Apply(in2)
	if out.Data["lat"] != out2.Data["lat"] || out.Data["lon"] != out2.Data["lon"] {
		t.Error("same-cell points blurred differently")
	}
}

func TestFieldHash(t *testing.T) {
	rule := &FieldHash{Fields: []string{"contact"}, Salt: []byte("device-salt")}
	in := Record{Sensor: "calls", Time: t0, Data: map[string]any{
		"contact":  "+33 6 12 34 56 78",
		"duration": 42.0,
	}}
	out, keep := rule.Apply(in)
	if !keep {
		t.Fatal("record dropped")
	}
	hashed, ok := out.Data["contact"].(string)
	if !ok || !strings.HasPrefix(hashed, "h:") {
		t.Fatalf("contact = %v, want hashed", out.Data["contact"])
	}
	if out.Data["duration"] != 42.0 {
		t.Error("unrelated field changed")
	}
	if in.Data["contact"] != "+33 6 12 34 56 78" {
		t.Error("input mutated")
	}
	// Equality preserved, raw value hidden.
	out2, _ := rule.Apply(in)
	if out2.Data["contact"] != hashed {
		t.Error("hash not deterministic")
	}
	other := Record{Sensor: "calls", Time: t0, Data: map[string]any{"contact": "+33 6 99 99 99 99"}}
	outOther, _ := rule.Apply(other)
	if outOther.Data["contact"] == hashed {
		t.Error("different contacts collide")
	}
	// Records without the field pass through unchanged.
	plain := Record{Sensor: "calls", Time: t0, Data: map[string]any{"duration": 1.0}}
	outPlain, keep := rule.Apply(plain)
	if !keep || outPlain.Data["duration"] != 1.0 {
		t.Error("field-less record altered")
	}
}

func TestRateLimit(t *testing.T) {
	rule := NewRateLimit(time.Minute)
	r1 := gpsRecord(lyon, t0)
	if _, keep := rule.Apply(r1); !keep {
		t.Error("first record dropped")
	}
	if _, keep := rule.Apply(gpsRecord(lyon, t0.Add(10*time.Second))); keep {
		t.Error("too-fast record kept")
	}
	if _, keep := rule.Apply(gpsRecord(lyon, t0.Add(61*time.Second))); !keep {
		t.Error("spaced record dropped")
	}
	// Separate sensors have separate budgets.
	b := Record{Sensor: "battery", Time: t0.Add(15 * time.Second), Data: map[string]any{"level": 50.0}}
	if _, keep := rule.Apply(b); !keep {
		t.Error("other sensor rate-limited")
	}
}

func TestChainOrderAndDrop(t *testing.T) {
	home := geo.Translate(lyon, 2000, 0)
	chain := NewChain(
		&SensorOptOut{Allowed: map[string]bool{"gps": true}},
		&TimeWindow{StartHour: 8, EndHour: 20},
		&ZoneExclusion{Centers: []geo.Point{home}, Radius: 300},
		&LocationBlur{CellSize: 200, Origin: lyon},
	)
	if got := len(chain.Rules()); got != 4 {
		t.Fatalf("chain has %d rules", got)
	}
	// Passing record: blurred but kept.
	out, keep := chain.Apply(gpsRecord(lyon, t0))
	if !keep {
		t.Fatal("valid record dropped")
	}
	if out.Data["lat"] == lyon.Lat {
		t.Error("blur did not run")
	}
	// Dropped by zone.
	if _, keep := chain.Apply(gpsRecord(home, t0)); keep {
		t.Error("zone record kept")
	}
	// Dropped by time.
	if _, keep := chain.Apply(gpsRecord(lyon, time.Date(2014, 12, 8, 3, 0, 0, 0, time.UTC))); keep {
		t.Error("night record kept")
	}
	// Dropped by sensor.
	if _, keep := chain.Apply(Record{Sensor: "mic", Time: t0}); keep {
		t.Error("mic record kept")
	}
	// Empty chain keeps everything.
	if _, keep := NewChain().Apply(gpsRecord(lyon, t0)); !keep {
		t.Error("empty chain dropped record")
	}
}
