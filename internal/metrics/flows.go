package metrics

import (
	"fmt"
	"math"
	"sort"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// Flow identifies a directed movement between two grid cells.
type Flow struct {
	From geo.Cell
	To   geo.Cell
}

// String implements fmt.Stringer.
func (f Flow) String() string { return fmt.Sprintf("%s->%s", f.From, f.To) }

// FlowMatrix counts directed cell-to-cell transitions across a dataset —
// the origin/destination structure urban planners mine from mobility
// releases. Consecutive records in the same cell do not produce a flow.
func FlowMatrix(d *trace.Dataset, g *geo.Grid) map[Flow]float64 {
	out := make(map[Flow]float64)
	for _, t := range d.Trajectories {
		var prev geo.Cell
		hasPrev := false
		for _, r := range t.Records {
			cell := g.CellOf(r.Pos)
			if hasPrev && cell != prev {
				out[Flow{From: prev, To: cell}]++
			}
			prev = cell
			hasPrev = true
		}
	}
	return out
}

// TopFlows returns the k heaviest flows, ties broken deterministically.
func TopFlows(m map[Flow]float64, k int) []Flow {
	flows := make([]Flow, 0, len(m))
	for f := range m {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if m[a] != m[b] {
			return m[a] > m[b]
		}
		if a.From != b.From {
			return lessCell(a.From, b.From)
		}
		return lessCell(a.To, b.To)
	})
	if len(flows) > k {
		flows = flows[:k]
	}
	return flows
}

func lessCell(a, b geo.Cell) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// FlowSimilarity compares two flow matrices with cosine similarity over
// the union of flows: 1 means the protected release preserves the
// origin/destination structure exactly. The folds run over sorted flows so
// the reported similarity is byte-identical between runs.
func FlowSimilarity(a, b map[Flow]float64) float64 {
	var dot, na, nb float64
	for _, f := range sortedFlows(a) {
		va := a[f]
		if vb, ok := b[f]; ok {
			dot += va * vb
		}
		na += va * va
	}
	for _, f := range sortedFlows(b) {
		vb := b[f]
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// sortedFlows returns the matrix's flows in (From, To) row-major order.
func sortedFlows(m map[Flow]float64) []Flow {
	flows := make([]Flow, 0, len(m))
	for f := range m {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].From != flows[j].From {
			return lessCell(flows[i].From, flows[j].From)
		}
		return lessCell(flows[i].To, flows[j].To)
	})
	return flows
}
