package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// DistortionStats summarises the time-aligned spatial distortion between a
// raw dataset and its protected release: for every protected record, the
// distance to where the user actually was at that instant.
type DistortionStats struct {
	Mean   float64
	Median float64
	P95    float64
	Max    float64
	Points int
}

// String implements fmt.Stringer.
func (s DistortionStats) String() string {
	return fmt.Sprintf("mean=%.0fm median=%.0fm p95=%.0fm max=%.0fm (%d points)",
		s.Mean, s.Median, s.P95, s.Max, s.Points)
}

// SpatialDistortion measures how far each protected record is from the
// user's true (interpolated) position at the same instant. Raw and
// protected are matched per user; protected records outside the raw time
// span are skipped. Mechanisms that displace points in space (noise,
// cloaking) score by their noise amplitude; mechanisms that displace points
// in time (speed smoothing) score by how far along the path the release has
// shifted the user.
func SpatialDistortion(raw, protected *trace.Dataset) DistortionStats {
	rawByUser := raw.ByUser()
	var dists []float64
	for _, pt := range protected.Trajectories {
		rawTrajs := rawByUser[pt.User]
		if len(rawTrajs) == 0 {
			continue
		}
		for _, r := range pt.Records {
			truePos, ok := positionAt(rawTrajs, r.Time)
			if !ok {
				continue
			}
			dists = append(dists, geo.Distance(truePos, r.Pos))
		}
	}
	return summarize(dists)
}

// positionAt finds the user's interpolated position at ts across their raw
// trajectories.
func positionAt(trajs []*trace.Trajectory, ts time.Time) (geo.Point, bool) {
	for _, t := range trajs {
		if p, ok := t.At(ts); ok {
			return p, true
		}
	}
	return geo.Point{}, false
}

func summarize(dists []float64) DistortionStats {
	if len(dists) == 0 {
		return DistortionStats{}
	}
	sort.Float64s(dists)
	var sum float64
	for _, d := range dists {
		sum += d
	}
	idx := func(q float64) int {
		i := int(math.Ceil(q*float64(len(dists)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(dists) {
			i = len(dists) - 1
		}
		return i
	}
	return DistortionStats{
		Mean:   sum / float64(len(dists)),
		Median: dists[idx(0.5)],
		P95:    dists[idx(0.95)],
		Max:    dists[len(dists)-1],
		Points: len(dists),
	}
}
