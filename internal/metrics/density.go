// Package metrics implements the utility metrics of the paper's claim C3:
// a protected release "remains high[ly useful] for useful data mining tasks
// such as finding out crowded places or predicting traffic".
//
// It provides crowd-density analysis (top-k crowded cells and their overlap
// between raw and protected data), a per-cell-per-hour traffic forecaster
// with its error metrics, time-aligned spatial distortion, and spatial
// coverage.
package metrics

import (
	"fmt"
	"sort"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// Density maps grid cells to an activity score.
type Density map[geo.Cell]float64

// UserDensity counts the number of distinct users seen in each cell — the
// "crowded places" measure of the paper.
func UserDensity(d *trace.Dataset, g *geo.Grid) Density {
	seen := make(map[geo.Cell]map[string]bool)
	for _, t := range d.Trajectories {
		for _, r := range t.Records {
			c := g.CellOf(r.Pos)
			users, ok := seen[c]
			if !ok {
				users = make(map[string]bool)
				seen[c] = users
			}
			users[t.User] = true
		}
	}
	out := make(Density, len(seen))
	for c, users := range seen {
		out[c] = float64(len(users))
	}
	return out
}

// FixDensity counts the number of fixes in each cell.
func FixDensity(d *trace.Dataset, g *geo.Grid) Density {
	out := make(Density)
	for _, t := range d.Trajectories {
		for _, r := range t.Records {
			out[g.CellOf(r.Pos)]++
		}
	}
	return out
}

// TopK returns the k densest cells, ties broken deterministically by cell
// coordinates. It returns fewer than k cells when the density has fewer
// non-zero entries.
func TopK(den Density, k int) []geo.Cell {
	cells := make([]geo.Cell, 0, len(den))
	for c := range den {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if den[a] != den[b] {
			return den[a] > den[b]
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	if len(cells) > k {
		cells = cells[:k]
	}
	return cells
}

// TopKOverlap compares the top-k cells of two densities and returns the F1
// overlap (equal to precision and recall when both sides yield k cells).
// This is the "finding out crowded places" utility score: 1 means the
// protected release identifies exactly the same hotspots as the raw data.
func TopKOverlap(raw, protected Density, k int) float64 {
	if k <= 0 {
		return 0
	}
	a := TopK(raw, k)
	b := TopK(protected, k)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[geo.Cell]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	var inter int
	for _, c := range b {
		if set[c] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// Coverage returns the fraction of cells visited in the raw dataset that
// are also visited in the protected release.
func Coverage(raw, protected *trace.Dataset, g *geo.Grid) float64 {
	rd := FixDensity(raw, g)
	if len(rd) == 0 {
		return 0
	}
	pd := FixDensity(protected, g)
	var kept int
	for c := range rd {
		if pd[c] > 0 {
			kept++
		}
	}
	return float64(kept) / float64(len(rd))
}

// HotspotReport is a printable summary of crowd-density utility.
type HotspotReport struct {
	K       int
	Overlap float64
}

// String implements fmt.Stringer.
func (h HotspotReport) String() string {
	return fmt.Sprintf("top-%d overlap=%.2f", h.K, h.Overlap)
}
