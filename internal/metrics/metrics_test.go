package metrics

import (
	"math"
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 8, 0, 0, 0, time.UTC)
)

func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	box, _ := geo.NewBBox([]geo.Point{
		geo.Translate(lyon, -8000, -8000),
		geo.Translate(lyon, 8000, 8000),
	})
	g, err := geo.NewGrid(box, 250)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusterDataset puts nUsers at `at` for an hour each (one fix a minute).
func clusterDataset(at geo.Point, nUsers int, userPrefix string) *trace.Dataset {
	d := trace.NewDataset()
	for u := 0; u < nUsers; u++ {
		tr := &trace.Trajectory{User: userPrefix + string(rune('a'+u))}
		for i := 0; i < 60; i++ {
			tr.Records = append(tr.Records, trace.Record{
				Time: t0.Add(time.Duration(i) * time.Minute),
				Pos:  at,
			})
		}
		d.Add(tr)
	}
	return d
}

func mergeDatasets(ds ...*trace.Dataset) *trace.Dataset {
	out := trace.NewDataset()
	for _, d := range ds {
		out.Trajectories = append(out.Trajectories, d.Trajectories...)
	}
	return out
}

func TestUserDensityCountsDistinctUsers(t *testing.T) {
	g := testGrid(t)
	hot := geo.Translate(lyon, 1000, 1000)
	d := clusterDataset(hot, 5, "u")
	den := UserDensity(d, g)
	if got := den[g.CellOf(hot)]; got != 5 {
		t.Errorf("hot cell density = %v, want 5", got)
	}
	fixDen := FixDensity(d, g)
	if got := fixDen[g.CellOf(hot)]; got != 5*60 {
		t.Errorf("hot cell fix density = %v, want 300", got)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	den := Density{
		{Row: 1, Col: 1}: 10,
		{Row: 2, Col: 2}: 30,
		{Row: 3, Col: 3}: 20,
		{Row: 4, Col: 4}: 20, // tie with row 3
	}
	top := TopK(den, 3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d cells", len(top))
	}
	if top[0] != (geo.Cell{Row: 2, Col: 2}) {
		t.Errorf("top[0] = %v", top[0])
	}
	// Tie at 20 broken by coordinates: row 3 before row 4.
	if top[1] != (geo.Cell{Row: 3, Col: 3}) || top[2] != (geo.Cell{Row: 4, Col: 4}) {
		t.Errorf("tie order wrong: %v", top)
	}
	if got := TopK(den, 100); len(got) != 4 {
		t.Errorf("TopK(100) = %d cells, want all 4", len(got))
	}
}

func TestTopKOverlapBounds(t *testing.T) {
	g := testGrid(t)
	hot1 := geo.Translate(lyon, 2000, 0)
	hot2 := geo.Translate(lyon, -2000, 0)
	d1 := mergeDatasets(clusterDataset(hot1, 6, "a"), clusterDataset(hot2, 3, "b"))
	den := UserDensity(d1, g)

	if got := TopKOverlap(den, den, 2); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
	other := Density{{Row: 0, Col: 0}: 5, {Row: 0, Col: 1}: 4}
	if got := TopKOverlap(den, other, 2); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	if got := TopKOverlap(den, den, 0); got != 0 {
		t.Errorf("k=0 overlap = %v, want 0", got)
	}
	if got := TopKOverlap(Density{}, den, 2); got != 0 {
		t.Errorf("empty raw overlap = %v, want 0", got)
	}
}

func TestCrowdedPlacesSurviveSmoothing(t *testing.T) {
	// Claim C3: hotspots computed from a smoothed release match the raw
	// hotspots. Use generated city data.
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 3, Users: 15, Days: 5})
	if err != nil {
		t.Fatal(err)
	}
	box, ok := ds.BBox()
	if !ok {
		t.Fatal("no bbox")
	}
	g, err := geo.NewGrid(box.Pad(500), 250)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(sm, ds)
	if err != nil {
		t.Fatal(err)
	}
	overlap := TopKOverlap(UserDensity(ds, g), UserDensity(prot, g), 20)
	if overlap < 0.6 {
		t.Errorf("smoothed top-20 overlap = %.2f, want >= 0.6 (claim C3)", overlap)
	}
}

func TestCoverage(t *testing.T) {
	g := testGrid(t)
	hot := geo.Translate(lyon, 1000, 1000)
	d := clusterDataset(hot, 2, "u")
	if got := Coverage(d, d, g); got != 1 {
		t.Errorf("self coverage = %v, want 1", got)
	}
	if got := Coverage(d, trace.NewDataset(), g); got != 0 {
		t.Errorf("empty coverage = %v, want 0", got)
	}
	if got := Coverage(trace.NewDataset(), d, g); got != 0 {
		t.Errorf("coverage with empty raw = %v, want 0", got)
	}
}

func TestCountTrafficAndForecast(t *testing.T) {
	g := testGrid(t)
	hot := geo.Translate(lyon, 500, 500)
	// Two identical days of 3 users visiting hot at 08:00.
	d := trace.NewDataset()
	for day := 0; day < 2; day++ {
		for u := 0; u < 3; u++ {
			tr := &trace.Trajectory{User: "u" + string(rune('a'+u))}
			base := t0.AddDate(0, 0, day)
			for i := 0; i < 30; i++ {
				tr.Records = append(tr.Records, trace.Record{
					Time: base.Add(time.Duration(i) * time.Minute),
					Pos:  hot,
				})
			}
			d.Add(tr)
		}
	}
	tc := CountTraffic(d, g)
	if len(tc.Days) != 2 {
		t.Fatalf("observed %d days, want 2", len(tc.Days))
	}
	ch := CellHour{Cell: g.CellOf(hot), Hour: 8}
	if got := tc.Visits[ch]["2014-12-08"]; got != 3 {
		t.Errorf("visits day1 = %v, want 3 (distinct users)", got)
	}

	f, err := NewForecaster(tc)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict(ch); got != 3 {
		t.Errorf("Predict = %v, want 3", got)
	}
	// Perfect self-forecast.
	errStats := f.Evaluate(tc)
	if errStats.MAE != 0 || errStats.RMSE != 0 {
		t.Errorf("self forecast error = %+v, want 0", errStats)
	}
	if errStats.Cells == 0 {
		t.Error("no cells evaluated")
	}
	if errStats.String() == "" {
		t.Error("empty String()")
	}
}

func TestForecasterErrors(t *testing.T) {
	if _, err := NewForecaster(&TrafficCounts{Days: map[string]bool{}}); err == nil {
		t.Error("empty training should fail")
	}
	g := testGrid(t)
	tc := CountTraffic(clusterDataset(lyon, 1, "u"), g)
	f, err := NewForecaster(tc)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Evaluate(&TrafficCounts{Days: map[string]bool{}}); got.Cells != 0 {
		t.Errorf("evaluating empty actual = %+v", got)
	}
}

func TestForecastPenalisesHallucinatedTraffic(t *testing.T) {
	g := testGrid(t)
	trainHot := geo.Translate(lyon, 3000, 0)
	actualHot := geo.Translate(lyon, -3000, 0)
	train := CountTraffic(clusterDataset(trainHot, 4, "u"), g)
	actual := CountTraffic(clusterDataset(actualHot, 4, "u"), g)
	f, err := NewForecaster(train)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Evaluate(actual)
	if e.MAE == 0 {
		t.Error("forecast trained on the wrong hotspot should have error")
	}
	// Both the missed and the hallucinated cells must be scored.
	if e.Cells < 2 {
		t.Errorf("evaluated %d cell-hours, want >= 2", e.Cells)
	}
}

func TestSplitAtDay(t *testing.T) {
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 5, Users: 3, Days: 4})
	if err != nil {
		t.Fatal(err)
	}
	cut := time.Date(2014, 12, 10, 0, 0, 0, 0, time.UTC)
	before, after := SplitAtDay(ds, cut)
	if before.Len() != 3*2 || after.Len() != 3*2 {
		t.Errorf("split = %d/%d trajectories, want 6/6", before.Len(), after.Len())
	}
	for _, tr := range before.Trajectories {
		if start, _ := tr.Start(); !start.Before(cut) {
			t.Error("before split contains late trajectory")
		}
	}
}

func TestSpatialDistortion(t *testing.T) {
	raw := trace.NewDataset()
	tr := &trace.Trajectory{User: "alice"}
	for i := 0; i < 10; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: t0.Add(time.Duration(i) * time.Minute),
			Pos:  lyon,
		})
	}
	raw.Add(tr)

	// Shift every record exactly 300 m east.
	shifted := raw.Clone()
	for i := range shifted.Trajectories[0].Records {
		shifted.Trajectories[0].Records[i].Pos = geo.Translate(lyon, 300, 0)
	}
	s := SpatialDistortion(raw, shifted)
	if math.Abs(s.Mean-300) > 1 || math.Abs(s.Median-300) > 1 {
		t.Errorf("distortion = %+v, want ~300 everywhere", s)
	}
	if s.Points != 10 {
		t.Errorf("points = %d, want 10", s.Points)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}

	// Identity has zero distortion.
	z := SpatialDistortion(raw, raw)
	if z.Mean != 0 || z.Max != 0 {
		t.Errorf("self distortion = %+v, want 0", z)
	}

	// Unknown users and out-of-span records are skipped.
	other := trace.NewDataset()
	other.Add(&trace.Trajectory{User: "nobody", Records: tr.Records})
	if got := SpatialDistortion(raw, other); got.Points != 0 {
		t.Errorf("unknown user scored %d points", got.Points)
	}
	if got := SpatialDistortion(raw, trace.NewDataset()); got.Points != 0 {
		t.Errorf("empty release scored %d points", got.Points)
	}
}

func TestSpatialDistortionOrdersMechanisms(t *testing.T) {
	// More noise means more distortion; the ordering must be monotone.
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 9, Users: 5, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, sigma := range []float64{10, 100, 500} {
		m, err := lppm.NewGaussianNoise(sigma, 1)
		if err != nil {
			t.Fatal(err)
		}
		prot, err := lppm.ProtectDataset(m, ds)
		if err != nil {
			t.Fatal(err)
		}
		s := SpatialDistortion(ds, prot)
		if s.Mean <= prev {
			t.Errorf("sigma=%v: mean distortion %v not greater than previous %v", sigma, s.Mean, prev)
		}
		prev = s.Mean
	}
}
