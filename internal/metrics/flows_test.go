package metrics

import (
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

func TestFlowMatrixCountsTransitions(t *testing.T) {
	g := testGrid(t)
	a := geo.Translate(lyon, -1000, 0)
	b := geo.Translate(lyon, 1000, 0)
	tr := &trace.Trajectory{User: "u"}
	// a a a b b a : flows a->b and b->a once each.
	positions := []geo.Point{a, a, a, b, b, a}
	for i, p := range positions {
		tr.Records = append(tr.Records, trace.Record{Time: t0.Add(time.Duration(i) * time.Minute), Pos: p})
	}
	ds := trace.NewDataset()
	ds.Add(tr)
	m := FlowMatrix(ds, g)
	ab := Flow{From: g.CellOf(a), To: g.CellOf(b)}
	ba := Flow{From: g.CellOf(b), To: g.CellOf(a)}
	if m[ab] != 1 || m[ba] != 1 {
		t.Errorf("flows = %v, want one each way", m)
	}
	if len(m) != 2 {
		t.Errorf("matrix has %d flows, want 2 (no self flows)", len(m))
	}
	if ab.String() == "" {
		t.Error("empty Flow.String")
	}
}

func TestTopFlowsOrdering(t *testing.T) {
	m := map[Flow]float64{
		{From: geo.Cell{Row: 1}, To: geo.Cell{Row: 2}}: 5,
		{From: geo.Cell{Row: 3}, To: geo.Cell{Row: 4}}: 9,
		{From: geo.Cell{Row: 5}, To: geo.Cell{Row: 6}}: 1,
	}
	top := TopFlows(m, 2)
	if len(top) != 2 || m[top[0]] != 9 || m[top[1]] != 5 {
		t.Errorf("TopFlows = %v", top)
	}
	if got := TopFlows(m, 10); len(got) != 3 {
		t.Errorf("TopFlows(10) = %d entries", len(got))
	}
}

func TestFlowSimilarityBounds(t *testing.T) {
	m := map[Flow]float64{{From: geo.Cell{Row: 1}, To: geo.Cell{Row: 2}}: 3}
	if got := FlowSimilarity(m, m); got < 0.999 {
		t.Errorf("self similarity = %v", got)
	}
	other := map[Flow]float64{{From: geo.Cell{Row: 9}, To: geo.Cell{Row: 8}}: 3}
	if got := FlowSimilarity(m, other); got != 0 {
		t.Errorf("disjoint similarity = %v", got)
	}
	if got := FlowSimilarity(m, nil); got != 0 {
		t.Errorf("empty similarity = %v", got)
	}
}

func TestFlowStructureSurvivesSmoothing(t *testing.T) {
	// The OD structure is another face of claim C3: smoothing preserves
	// the path, so the flow matrix stays close to raw, while strong noise
	// scatters transitions everywhere.
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 13, Users: 10, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	box, _ := ds.BBox()
	g, err := geo.NewGrid(box.Pad(500), 500)
	if err != nil {
		t.Fatal(err)
	}
	raw := FlowMatrix(ds, g)

	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := lppm.ProtectDataset(sm, ds)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := lppm.NewGeoInd(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := lppm.ProtectDataset(gi, ds)
	if err != nil {
		t.Fatal(err)
	}

	simSmooth := FlowSimilarity(raw, FlowMatrix(smoothed, g))
	simNoisy := FlowSimilarity(raw, FlowMatrix(noisy, g))
	if simSmooth < 0.5 {
		t.Errorf("smoothing flow similarity = %.2f, want >= 0.5", simSmooth)
	}
	if simNoisy >= simSmooth {
		t.Errorf("heavy noise similarity %.2f should be below smoothing %.2f", simNoisy, simSmooth)
	}
}
