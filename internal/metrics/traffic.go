package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// CellHour identifies one grid cell during one hour of the day (0-23).
type CellHour struct {
	Cell geo.Cell
	Hour int
}

// TrafficCounts accumulates, for every (cell, hour-of-day), the number of
// distinct user visits per calendar day. A visit is counted once per user
// per cell per hour per day.
type TrafficCounts struct {
	// Visits[ch][day] is the visit count for day (formatted 2006-01-02).
	Visits map[CellHour]map[string]float64
	// Days is the set of days observed.
	Days map[string]bool
}

// CountTraffic builds traffic counts for the dataset on the given grid.
func CountTraffic(d *trace.Dataset, g *geo.Grid) *TrafficCounts {
	tc := &TrafficCounts{
		Visits: make(map[CellHour]map[string]float64),
		Days:   make(map[string]bool),
	}
	type visitKey struct {
		ch   CellHour
		day  string
		user string
	}
	seen := make(map[visitKey]bool)
	for _, t := range d.Trajectories {
		for _, r := range t.Records {
			utc := r.Time.UTC()
			ch := CellHour{Cell: g.CellOf(r.Pos), Hour: utc.Hour()}
			day := utc.Format("2006-01-02")
			k := visitKey{ch: ch, day: day, user: t.User}
			if seen[k] {
				continue
			}
			seen[k] = true
			tc.Days[day] = true
			byDay, ok := tc.Visits[ch]
			if !ok {
				byDay = make(map[string]float64)
				tc.Visits[ch] = byDay
			}
			byDay[day]++
		}
	}
	return tc
}

// Forecaster predicts per-(cell,hour) visit counts as the historical mean
// over the training days — the standard baseline for urban traffic
// prediction and the data-mining task of the paper's claim C3.
type Forecaster struct {
	mean map[CellHour]float64
	days int
}

// NewForecaster trains a historical-average forecaster from counts.
func NewForecaster(tc *TrafficCounts) (*Forecaster, error) {
	if len(tc.Days) == 0 {
		return nil, fmt.Errorf("metrics: no training days")
	}
	f := &Forecaster{mean: make(map[CellHour]float64, len(tc.Visits)), days: len(tc.Days)}
	for ch, byDay := range tc.Visits {
		f.mean[ch] = sumByDay(byDay) / float64(len(tc.Days))
	}
	return f, nil
}

// sumByDay adds per-day counts in day order: float addition is not
// associative, so summing in map iteration order would make the forecaster
// differ in the last bits from run to run, breaking the engine's guarantee
// of byte-identical reports.
func sumByDay(byDay map[string]float64) float64 {
	days := make([]string, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Strings(days)
	var sum float64
	for _, d := range days {
		sum += byDay[d]
	}
	return sum
}

// Predict returns the expected visit count for a cell-hour.
func (f *Forecaster) Predict(ch CellHour) float64 { return f.mean[ch] }

// ForecastError summarises forecast accuracy over a test day.
type ForecastError struct {
	MAE   float64 // mean absolute error over active cell-hours
	RMSE  float64
	Cells int // number of cell-hours evaluated
}

// String implements fmt.Stringer.
func (e ForecastError) String() string {
	return fmt.Sprintf("mae=%.3f rmse=%.3f over %d cell-hours", e.MAE, e.RMSE, e.Cells)
}

// Evaluate compares the forecaster against the actual counts of a test
// dataset (typically one held-out raw day). Every cell-hour active in
// either the forecast or the actual data is scored, so both missed traffic
// and hallucinated traffic count as error.
func (f *Forecaster) Evaluate(actual *TrafficCounts) ForecastError {
	if len(actual.Days) == 0 {
		return ForecastError{}
	}
	// Average actual per cell-hour across the test days.
	act := make(map[CellHour]float64, len(actual.Visits))
	for ch, byDay := range actual.Visits {
		act[ch] = sumByDay(byDay) / float64(len(actual.Days))
	}
	// Score the union of active cell-hours in a stable order (see
	// sumByDay for why accumulation order matters).
	evaluated := make(map[CellHour]bool, len(act)+len(f.mean))
	chs := make([]CellHour, 0, len(act)+len(f.mean))
	collect := func(ch CellHour) {
		if !evaluated[ch] {
			evaluated[ch] = true
			chs = append(chs, ch)
		}
	}
	for ch := range act {
		collect(ch)
	}
	for ch := range f.mean {
		collect(ch)
	}
	sort.Slice(chs, func(i, j int) bool {
		a, b := chs[i], chs[j]
		if a.Cell.Row != b.Cell.Row {
			return a.Cell.Row < b.Cell.Row
		}
		if a.Cell.Col != b.Cell.Col {
			return a.Cell.Col < b.Cell.Col
		}
		return a.Hour < b.Hour
	})
	var absSum, sqSum float64
	for _, ch := range chs {
		diff := f.Predict(ch) - act[ch]
		absSum += math.Abs(diff)
		sqSum += diff * diff
	}
	n := len(chs)
	if n == 0 {
		return ForecastError{}
	}
	return ForecastError{MAE: absSum / float64(n), RMSE: math.Sqrt(sqSum / float64(n)), Cells: n}
}

// SplitAtDay partitions a dataset into trajectories starting before the cut
// instant and those starting at or after it — the train/test split used by
// the traffic experiment.
func SplitAtDay(d *trace.Dataset, cut time.Time) (before, after *trace.Dataset) {
	before = trace.NewDataset()
	after = trace.NewDataset()
	for _, t := range d.Trajectories {
		start, err := t.Start()
		if err != nil {
			continue
		}
		if start.Before(cut) {
			before.Add(t)
		} else {
			after.Add(t)
		}
	}
	return before, after
}
