// Package par provides the bounded-worker fan-out primitive shared by the
// concurrent stages of the publication pipeline (strategy portfolio
// evaluation in internal/core, per-trajectory protection in internal/lppm).
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) on up to workers goroutines and
// blocks until all scheduled calls return. Work items are claimed through a
// shared atomic counter, so callers that write fn results into the i-th
// slot of a preallocated slice preserve input order regardless of
// scheduling. On the first fn error the remaining items are abandoned (the
// ctx passed to in-flight fn calls is cancelled) and that error is
// returned. When ctx is cancelled, For stops claiming items and returns
// ctx.Err(). workers <= 1 (or n <= 1) degrades to a sequential loop with
// no goroutine overhead.
func For(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := fn(wctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
