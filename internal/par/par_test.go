package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		const n = 37
		var done [n]atomic.Bool
		err := For(context.Background(), n, workers, func(_ context.Context, i int) error {
			if done[i].Swap(true) {
				t.Errorf("workers=%d: item %d ran twice", workers, i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range done {
			if !done[i].Load() {
				t.Errorf("workers=%d: item %d never ran", workers, i)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), 100, workers, func(_ context.Context, i int) error {
			if i == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := For(ctx, 100, workers, func(_ context.Context, i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > int64(workers) {
			t.Errorf("workers=%d: %d items ran after pre-cancel", workers, got)
		}
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := For(context.Background(), 50, workers, func(_ context.Context, i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
	}
}
