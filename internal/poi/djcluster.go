package poi

import (
	"fmt"
	"sort"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// DJClusterConfig parameterises DJ-Cluster.
type DJClusterConfig struct {
	// Eps is the neighbourhood radius in metres (default 150).
	Eps float64
	// MinPts is the minimum neighbourhood size to seed a cluster
	// (default 8).
	MinPts int
	// MaxSpeed drops fixes moving faster than this many m/s before
	// clustering, so that only quasi-stationary fixes form POIs
	// (default 0.8; set negative to keep all fixes).
	MaxSpeed float64
}

func (c DJClusterConfig) withDefaults() DJClusterConfig {
	if c.Eps == 0 {
		c.Eps = 150
	}
	if c.MinPts == 0 {
		c.MinPts = 8
	}
	if c.MaxSpeed == 0 {
		c.MaxSpeed = 0.8
	}
	return c
}

// Validate reports configuration errors.
func (c DJClusterConfig) Validate() error {
	if c.Eps < 0 {
		return fmt.Errorf("poi: Eps must be >= 0, got %v", c.Eps)
	}
	if c.MinPts < 0 {
		return fmt.Errorf("poi: MinPts must be >= 0, got %d", c.MinPts)
	}
	return nil
}

// DJCluster implements density-joinable clustering over the low-speed fixes
// of a trajectory. Unlike stay-point detection it does not rely on temporal
// contiguity, which makes it the attacker's tool of choice against
// mechanisms that shuffle or re-time records.
type DJCluster struct {
	cfg DJClusterConfig
}

var _ Extractor = (*DJCluster)(nil)

// NewDJCluster returns a DJ-Cluster extractor; zero fields of cfg take the
// documented defaults.
func NewDJCluster(cfg DJClusterConfig) (*DJCluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DJCluster{cfg: cfg.withDefaults()}, nil
}

// Extract implements Extractor.
func (d *DJCluster) Extract(t *trace.Trajectory) []POI {
	recs := slowFixes(t, d.cfg.MaxSpeed)
	if len(recs) == 0 {
		return nil
	}
	// Project once: clustering runs on a flat plane.
	pr := geo.NewProjection(recs[0].Pos)
	xys := make([]geo.XY, len(recs))
	for i, r := range recs {
		xys[i] = pr.Forward(r.Pos)
	}

	// Sort by X and use a sliding window to bound neighbourhood scans.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xys[order[a]].X < xys[order[b]].X })
	posInOrder := make([]int, len(recs))
	for rank, idx := range order {
		posInOrder[idx] = rank
	}

	neighbours := func(i int) []int {
		var out []int
		xi := xys[i]
		// Walk left and right in x-order until |dx| > Eps.
		for rank := posInOrder[i]; rank >= 0; rank-- {
			j := order[rank]
			if xi.X-xys[j].X > d.cfg.Eps {
				break
			}
			if geo.Dist(xi, xys[j]) <= d.cfg.Eps {
				out = append(out, j)
			}
		}
		for rank := posInOrder[i] + 1; rank < len(order); rank++ {
			j := order[rank]
			if xys[j].X-xi.X > d.cfg.Eps {
				break
			}
			if geo.Dist(xi, xys[j]) <= d.cfg.Eps {
				out = append(out, j)
			}
		}
		return out
	}

	const unvisited, noise = 0, -1
	labels := make([]int, len(recs)) // 0 unvisited, -1 noise, >0 cluster id
	nextCluster := 1
	for i := range recs {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbours(i)
		if len(nb) < d.cfg.MinPts {
			labels[i] = noise
			continue
		}
		id := nextCluster
		nextCluster++
		labels[i] = id
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == noise {
				labels[j] = id // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			if nbj := neighbours(j); len(nbj) >= d.cfg.MinPts {
				queue = append(queue, nbj...)
			}
		}
	}

	// Build one POI per cluster.
	type agg struct {
		pts   []geo.Point
		enter time.Time
		leave time.Time
	}
	clusters := make(map[int]*agg)
	for i, lbl := range labels {
		if lbl <= 0 {
			continue
		}
		a, ok := clusters[lbl]
		if !ok {
			a = &agg{enter: recs[i].Time, leave: recs[i].Time}
			clusters[lbl] = a
		}
		a.pts = append(a.pts, recs[i].Pos)
		if recs[i].Time.Before(a.enter) {
			a.enter = recs[i].Time
		}
		if recs[i].Time.After(a.leave) {
			a.leave = recs[i].Time
		}
	}
	ids := make([]int, 0, len(clusters))
	for id := range clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]POI, 0, len(ids))
	for _, id := range ids {
		a := clusters[id]
		out = append(out, POI{
			Center: geo.Centroid(a.pts),
			Enter:  a.enter,
			Leave:  a.leave,
			Fixes:  len(a.pts),
		})
	}
	return out
}

// slowFixes returns the records whose instantaneous speed (vs the previous
// fix) is at most maxSpeed m/s. A negative maxSpeed keeps everything.
func slowFixes(t *trace.Trajectory, maxSpeed float64) []trace.Record {
	if maxSpeed < 0 {
		return t.Records
	}
	var out []trace.Record
	for i, r := range t.Records {
		if i == 0 {
			out = append(out, r)
			continue
		}
		dt := r.Time.Sub(t.Records[i-1].Time).Seconds()
		if dt <= 0 {
			continue
		}
		if geo.Distance(t.Records[i-1].Pos, r.Pos)/dt <= maxSpeed {
			out = append(out, r)
		}
	}
	return out
}
