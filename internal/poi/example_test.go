package poi_test

import (
	"fmt"
	"time"

	"apisense/internal/geo"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// ExampleStayPoints extracts the places where a user stopped from one day
// of movement — the analysis PRIVAPI's speed smoothing is built to defeat.
func ExampleStayPoints() {
	home := geo.Point{Lat: 45.7640, Lon: 4.8357}
	office := geo.Translate(home, 3000, 1500)
	start := time.Date(2014, 12, 8, 7, 0, 0, 0, time.UTC)

	day := &trace.Trajectory{User: "alice"}
	ts := start
	stay := func(at geo.Point, hours float64) {
		for end := ts.Add(time.Duration(hours * float64(time.Hour))); ts.Before(end); ts = ts.Add(time.Minute) {
			day.Records = append(day.Records, trace.Record{Time: ts, Pos: at})
		}
	}
	commute := func(from, to geo.Point) {
		dur := time.Duration(geo.Distance(from, to) / 10 * float64(time.Second))
		for end := ts.Add(dur); ts.Before(end); ts = ts.Add(time.Minute) {
			frac := 1 - float64(end.Sub(ts))/float64(dur)
			day.Records = append(day.Records, trace.Record{Time: ts, Pos: geo.Lerp(from, to, frac)})
		}
	}
	stay(home, 1.5)
	commute(home, office)
	stay(office, 8)
	commute(office, home)
	stay(home, 2)

	extractor, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	places := poi.Merge(extractor.Extract(day), 250)
	for _, p := range places {
		kind := "office"
		if geo.Distance(p.Center, home) < 250 {
			kind = "home"
		}
		fmt.Printf("%s: dwell %s\n", kind, p.Dwell().Round(time.Hour))
	}
	// Output:
	// home: dwell 12h0m0s
	// office: dwell 8h0m0s
}
