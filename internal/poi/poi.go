// Package poi extracts points of interest (POIs) from mobility traces.
//
// The paper (§3) defines POIs as "places where a user spends significant
// amounts of time like his home, his office, a cinema": they carry rich
// semantic information and almost uniquely identify individuals. This
// package implements the two extractors used in the authors' companion work:
//
//   - stay-point detection (Li/Zheng): a maximal run of fixes that stays
//     within MaxDistance of its anchor for at least MinDuration;
//   - DJ-Cluster: density-joinable clustering of low-speed fixes, which is
//     what an attacker typically runs on protected data.
//
// Both return POI values carrying a centroid, a dwell time and the number of
// supporting fixes.
package poi

import (
	"fmt"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// POI is an extracted point of interest.
type POI struct {
	// Center is the centroid of the supporting fixes.
	Center geo.Point
	// Enter and Leave bound the (first) visit.
	Enter time.Time
	Leave time.Time
	// Fixes is the number of records supporting the POI.
	Fixes int
}

// Dwell returns the visit duration.
func (p POI) Dwell() time.Duration { return p.Leave.Sub(p.Enter) }

// Extractor extracts POIs from a single trajectory.
type Extractor interface {
	// Extract returns the POIs found in t, in chronological order of
	// first visit when the notion applies.
	Extract(t *trace.Trajectory) []POI
}

// StayPointConfig parameterises stay-point detection.
type StayPointConfig struct {
	// MaxDistance is the roaming radius in metres (default 200).
	MaxDistance float64
	// MinDuration is the minimum dwell time (default 15 min).
	MinDuration time.Duration
}

func (c StayPointConfig) withDefaults() StayPointConfig {
	if c.MaxDistance == 0 {
		c.MaxDistance = 200
	}
	if c.MinDuration == 0 {
		c.MinDuration = 15 * time.Minute
	}
	return c
}

// Validate reports configuration errors.
func (c StayPointConfig) Validate() error {
	if c.MaxDistance < 0 {
		return fmt.Errorf("poi: MaxDistance must be >= 0, got %v", c.MaxDistance)
	}
	if c.MinDuration < 0 {
		return fmt.Errorf("poi: MinDuration must be >= 0, got %v", c.MinDuration)
	}
	return nil
}

// StayPoints is the classic stay-point detector.
type StayPoints struct {
	cfg StayPointConfig
}

var _ Extractor = (*StayPoints)(nil)

// NewStayPoints returns a stay-point extractor; zero fields of cfg take the
// documented defaults.
func NewStayPoints(cfg StayPointConfig) (*StayPoints, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &StayPoints{cfg: cfg.withDefaults()}, nil
}

// Extract implements Extractor.
func (s *StayPoints) Extract(t *trace.Trajectory) []POI {
	recs := t.Records
	var out []POI
	i := 0
	for i < len(recs) {
		j := i + 1
		for j < len(recs) && geo.Distance(recs[i].Pos, recs[j].Pos) <= s.cfg.MaxDistance {
			j++
		}
		// recs[i:j] stay within MaxDistance of the anchor.
		if dwell := recs[j-1].Time.Sub(recs[i].Time); dwell >= s.cfg.MinDuration {
			pts := make([]geo.Point, 0, j-i)
			for _, r := range recs[i:j] {
				pts = append(pts, r.Pos)
			}
			out = append(out, POI{
				Center: geo.Centroid(pts),
				Enter:  recs[i].Time,
				Leave:  recs[j-1].Time,
				Fixes:  j - i,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

// ExtractAll runs the extractor on every trajectory of a dataset and groups
// the POIs by user.
func ExtractAll(e Extractor, d *trace.Dataset) map[string][]POI {
	out := make(map[string][]POI)
	for _, t := range d.Trajectories {
		if pois := e.Extract(t); len(pois) > 0 {
			out[t.User] = append(out[t.User], pois...)
		}
	}
	return out
}

// Merge collapses POIs whose centroids are within radius metres of each
// other into a single POI (centroid of centroids, summed fixes, widest time
// span). It is used to turn per-day POIs into per-user places.
func Merge(pois []POI, radius float64) []POI {
	var merged []POI
	for _, p := range pois {
		placed := false
		for i := range merged {
			if geo.Distance(merged[i].Center, p.Center) <= radius {
				m := &merged[i]
				total := float64(m.Fixes + p.Fixes)
				m.Center = geo.Point{
					Lat: (m.Center.Lat*float64(m.Fixes) + p.Center.Lat*float64(p.Fixes)) / total,
					Lon: (m.Center.Lon*float64(m.Fixes) + p.Center.Lon*float64(p.Fixes)) / total,
				}
				m.Fixes += p.Fixes
				if p.Enter.Before(m.Enter) {
					m.Enter = p.Enter
				}
				if p.Leave.After(m.Leave) {
					m.Leave = p.Leave
				}
				placed = true
				break
			}
		}
		if !placed {
			merged = append(merged, p)
		}
	}
	return merged
}
