package poi

import (
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 8, 0, 0, 0, time.UTC)
)

// stayThenMove builds a trajectory that dwells at `at` for dwell (one fix a
// minute), then moves away east at 10 m/s for 10 minutes.
func stayThenMove(at geo.Point, dwell time.Duration) *trace.Trajectory {
	tr := &trace.Trajectory{User: "u"}
	ts := t0
	for ; ts.Before(t0.Add(dwell)); ts = ts.Add(time.Minute) {
		tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: at})
	}
	start := ts
	for ; ts.Before(start.Add(10 * time.Minute)); ts = ts.Add(time.Minute) {
		dx := 10 * ts.Sub(start).Seconds()
		tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: geo.Translate(at, dx, 0)})
	}
	return tr
}

func TestStayPointsFindsDwell(t *testing.T) {
	sp, err := NewStayPoints(StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := stayThenMove(lyon, time.Hour)
	pois := sp.Extract(tr)
	if len(pois) != 1 {
		t.Fatalf("extracted %d POIs, want 1", len(pois))
	}
	p := pois[0]
	if d := geo.Distance(p.Center, lyon); d > 10 {
		t.Errorf("POI centre %f m from true location", d)
	}
	if p.Dwell() < 55*time.Minute {
		t.Errorf("dwell = %v, want ~59 min", p.Dwell())
	}
	if p.Fixes < 55 {
		t.Errorf("fixes = %d, want ~60", p.Fixes)
	}
}

func TestStayPointsIgnoresShortStop(t *testing.T) {
	sp, err := NewStayPoints(StayPointConfig{MinDuration: 15 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tr := stayThenMove(lyon, 5*time.Minute) // below threshold
	if pois := sp.Extract(tr); len(pois) != 0 {
		t.Errorf("extracted %d POIs from a 5-minute stop, want 0", len(pois))
	}
}

func TestStayPointsMultipleStops(t *testing.T) {
	sp, err := NewStayPoints(StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home := lyon
	work := geo.Translate(lyon, 3000, 1000)
	tr := &trace.Trajectory{User: "u"}
	ts := t0
	addStay := func(at geo.Point, d time.Duration) {
		for end := ts.Add(d); ts.Before(end); ts = ts.Add(time.Minute) {
			tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: at})
		}
	}
	addMove := func(from, to geo.Point) {
		dist := geo.Distance(from, to)
		dur := time.Duration(dist / 10 * float64(time.Second))
		for end := ts.Add(dur); ts.Before(end); ts = ts.Add(time.Minute) {
			frac := 1 - float64(end.Sub(ts))/float64(dur)
			tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: geo.Lerp(from, to, frac)})
		}
	}
	addStay(home, time.Hour)
	addMove(home, work)
	addStay(work, 2*time.Hour)
	addMove(work, home)
	addStay(home, time.Hour)

	pois := sp.Extract(tr)
	if len(pois) != 3 {
		t.Fatalf("extracted %d POIs, want 3 (home, work, home)", len(pois))
	}
	if d := geo.Distance(pois[0].Center, home); d > 20 {
		t.Errorf("first POI %f m from home", d)
	}
	if d := geo.Distance(pois[1].Center, work); d > 20 {
		t.Errorf("second POI %f m from work", d)
	}

	merged := Merge(pois, 200)
	if len(merged) != 2 {
		t.Fatalf("merged to %d POIs, want 2 (home, work)", len(merged))
	}
	if merged[0].Fixes != pois[0].Fixes+pois[2].Fixes {
		t.Errorf("merged home fixes = %d", merged[0].Fixes)
	}
}

func TestStayPointConfigValidation(t *testing.T) {
	if _, err := NewStayPoints(StayPointConfig{MaxDistance: -1}); err == nil {
		t.Error("negative MaxDistance should fail")
	}
	if _, err := NewStayPoints(StayPointConfig{MinDuration: -time.Second}); err == nil {
		t.Error("negative MinDuration should fail")
	}
}

func TestStayPointsEmptyTrajectory(t *testing.T) {
	sp, err := NewStayPoints(StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Extract(&trace.Trajectory{}); got != nil {
		t.Errorf("Extract(empty) = %v, want nil", got)
	}
}

func TestDJClusterFindsDwell(t *testing.T) {
	dj, err := NewDJCluster(DJClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := stayThenMove(lyon, time.Hour)
	pois := dj.Extract(tr)
	if len(pois) != 1 {
		t.Fatalf("extracted %d POIs, want 1", len(pois))
	}
	if d := geo.Distance(pois[0].Center, lyon); d > 20 {
		t.Errorf("POI centre %f m from true location", d)
	}
}

func TestDJClusterJoinsRevisits(t *testing.T) {
	// Two separate one-hour visits to the same place on the same
	// trajectory must produce a single cluster (density-joinable), where
	// stay-point detection produces two.
	dj, err := NewDJCluster(DJClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trajectory{User: "u"}
	ts := t0
	away := geo.Translate(lyon, 5000, 0)
	addStay := func(at geo.Point, d time.Duration) {
		for end := ts.Add(d); ts.Before(end); ts = ts.Add(time.Minute) {
			tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: at})
		}
	}
	addStay(lyon, time.Hour)
	// Jump (teleport) far away and back: the jump fixes are fast and get
	// speed-filtered.
	addStay(away, 30*time.Minute)
	addStay(lyon, time.Hour)

	pois := dj.Extract(tr)
	if len(pois) != 2 {
		t.Fatalf("extracted %d POIs, want 2 (lyon joined, away)", len(pois))
	}
	// The lyon cluster must span both visits.
	var lyonPOI *POI
	for i := range pois {
		if geo.Distance(pois[i].Center, lyon) < 50 {
			lyonPOI = &pois[i]
		}
	}
	if lyonPOI == nil {
		t.Fatal("no cluster at lyon")
	}
	if lyonPOI.Leave.Sub(lyonPOI.Enter) < 2*time.Hour {
		t.Errorf("lyon cluster span = %v, want >= 2h30m window", lyonPOI.Leave.Sub(lyonPOI.Enter))
	}
}

func TestDJClusterSpeedFilterRemovesTravel(t *testing.T) {
	dj, err := NewDJCluster(DJClusterConfig{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Pure movement: no POIs.
	tr := &trace.Trajectory{User: "u"}
	for i := 0; i < 120; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: t0.Add(time.Duration(i) * time.Minute),
			Pos:  geo.Translate(lyon, float64(i)*300, 0), // 5 m/s
		})
	}
	if pois := dj.Extract(tr); len(pois) != 0 {
		t.Errorf("extracted %d POIs from pure travel, want 0", len(pois))
	}
}

func TestDJClusterConfigValidation(t *testing.T) {
	if _, err := NewDJCluster(DJClusterConfig{Eps: -1}); err == nil {
		t.Error("negative Eps should fail")
	}
	if _, err := NewDJCluster(DJClusterConfig{MinPts: -1}); err == nil {
		t.Error("negative MinPts should fail")
	}
}

func TestExtractorsOnSyntheticCity(t *testing.T) {
	// On generated data, both extractors must locate home and work for
	// most users: this is the ground-truth link the attack packages rely
	// on.
	ds, city, err := mobgen.Generate(mobgen.Config{Seed: 7, Users: 6, Days: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewStayPoints(StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	perUser := ExtractAll(sp, ds)
	foundHome, foundWork := 0, 0
	for _, res := range city.Residents {
		pois := Merge(perUser[res.User], 250)
		for _, p := range pois {
			if geo.Distance(p.Center, res.Home) < 250 {
				foundHome++
				break
			}
		}
		for _, p := range pois {
			if geo.Distance(p.Center, res.Work) < 250 {
				foundWork++
				break
			}
		}
	}
	if foundHome < 6 {
		t.Errorf("home found for %d/6 users", foundHome)
	}
	if foundWork < 6 {
		t.Errorf("work found for %d/6 users", foundWork)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := Merge(nil, 100); got != nil {
		t.Errorf("Merge(nil) = %v", got)
	}
	one := []POI{{Center: lyon, Fixes: 3}}
	if got := Merge(one, 100); len(got) != 1 {
		t.Errorf("Merge(single) = %d POIs", len(got))
	}
}
