package device

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"apisense/internal/transport"
)

// batchServer fakes the Hive's batch endpoint: it answers 429 (with an
// optional Retry-After) for the first reject429 calls, then accepts
// everything, recording the batch sizes it saw.
func batchServer(t *testing.T, reject429 int, retryAfter string) (*httptest.Server, *[]int, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	sizes := &[]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/uploads/batch" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if int(calls.Add(1)) <= reject429 {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"ingest: queue full"}`, http.StatusTooManyRequests)
			return
		}
		var batch transport.UploadBatch
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			t.Error(err)
		}
		*sizes = append(*sizes, len(batch.Uploads))
		resp := transport.UploadBatchResponse{Accepted: len(batch.Uploads)}
		for i := range batch.Uploads {
			resp.Results = append(resp.Results, transport.UploadResult{Index: i, Code: transport.UploadOK})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	return srv, sizes, &calls
}

func up(i int) transport.Upload {
	return transport.Upload{TaskID: "task-0001", DeviceID: fmt.Sprintf("d%d", i)}
}

func TestBatchUploaderFlushesAtThreshold(t *testing.T) {
	srv, sizes, _ := batchServer(t, 0, "")
	defer srv.Close()
	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{BatchSize: 3})

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		resp, err := u.Add(ctx, up(i))
		if err != nil || resp != nil {
			t.Fatalf("Add %d below threshold: resp=%v err=%v", i, resp, err)
		}
	}
	if u.Pending() != 2 {
		t.Errorf("pending = %d, want 2", u.Pending())
	}
	resp, err := u.Add(ctx, up(2)) // hits the threshold
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || resp.Accepted != 3 {
		t.Fatalf("flush response = %+v, want 3 accepted", resp)
	}
	if u.Pending() != 0 {
		t.Errorf("pending after flush = %d, want 0", u.Pending())
	}
	if len(*sizes) != 1 || (*sizes)[0] != 3 {
		t.Errorf("server saw batches %v, want [3]", *sizes)
	}

	// Flush with an empty buffer is a no-op.
	if resp, err := u.Flush(ctx); err != nil || resp.Accepted != 0 {
		t.Errorf("empty flush = %+v, %v", resp, err)
	}
	if len(*sizes) != 1 {
		t.Errorf("empty flush hit the server: %v", *sizes)
	}
}

// TestBatchUploaderRetriesOn429: backpressure is retried with jittered
// backoff that honours the server's Retry-After hint, and the buffer
// survives until the flush lands.
func TestBatchUploaderRetriesOn429(t *testing.T) {
	srv, sizes, calls := batchServer(t, 2, "1")
	defer srv.Close()

	var delays []time.Duration
	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{
		BatchSize: 2, BaseDelay: 100 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	resp, err := u.Add(context.Background(), up(0))
	if err != nil || resp != nil {
		t.Fatal(err)
	}
	resp, err = u.Add(context.Background(), up(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || resp.Accepted != 2 {
		t.Fatalf("response = %+v, want 2 accepted", resp)
	}
	if got := calls.Load(); got != 3 { // two 429s + success
		t.Errorf("server calls = %d, want 3", got)
	}
	if u.Retries != 2 {
		t.Errorf("Retries = %d, want 2", u.Retries)
	}
	if len(*sizes) != 1 || (*sizes)[0] != 2 {
		t.Errorf("server saw batches %v, want [2]", *sizes)
	}
	// Retry-After of 1s dominates the 100ms base; jitter adds at most 50%.
	if len(delays) != 2 {
		t.Fatalf("delays = %v, want 2 waits", delays)
	}
	for i, d := range delays {
		if d < time.Second || d > 1500*time.Millisecond {
			t.Errorf("delay[%d] = %v, want within [1s, 1.5s] (Retry-After + jitter)", i, d)
		}
	}
}

// TestBatchUploaderBackoffGrows: without a server hint the exponential
// base doubles per attempt, with up to 50% jitter on top.
func TestBatchUploaderBackoffGrows(t *testing.T) {
	srv, _, _ := batchServer(t, 3, "")
	defer srv.Close()
	var delays []time.Duration
	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{
		BatchSize: 1, BaseDelay: 100 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	if _, err := u.Add(context.Background(), up(0)); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %d waits", delays, len(want))
	}
	for i, base := range want {
		if delays[i] < base || delays[i] > base+base/2 {
			t.Errorf("delay[%d] = %v, want within [%v, %v]", i, delays[i], base, base+base/2)
		}
	}
}

// TestBatchUploaderGivesUp: a persistently full queue bounds the retries,
// keeps the buffer for a later flush, and surfaces the 429.
func TestBatchUploaderGivesUp(t *testing.T) {
	srv, _, calls := batchServer(t, 1000, "")
	defer srv.Close()
	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{
		BatchSize: 2, MaxRetries: 2,
		Sleep: func(context.Context, time.Duration) error { return nil },
	})
	if _, err := u.Add(context.Background(), up(0)); err != nil {
		t.Fatal(err)
	}
	_, err := u.Add(context.Background(), up(1))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want a 429 failure", err)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Errorf("server calls = %d, want 3", got)
	}
	if u.Pending() != 2 {
		t.Errorf("pending = %d, want the batch kept for a later flush", u.Pending())
	}
	// The threshold moved past the kept items: the next Add buffers
	// without re-running a retry cycle against the saturated server...
	if _, err := u.Add(context.Background(), up(2)); err != nil {
		t.Fatalf("Add below the raised threshold flushed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server calls after quiet Add = %d, want still 3", got)
	}
	// ...and a full BatchSize of fresh data tries again.
	if _, err := u.Add(context.Background(), up(3)); err == nil {
		t.Fatal("expected the re-flush to surface the 429")
	}
	if got := calls.Load(); got != 6 {
		t.Errorf("server calls after re-flush = %d, want 6", got)
	}
}

// TestBatchUploaderKeepsTransientFailures: items the server marked
// "failed" (storage/journal hiccup) stay buffered and land on the next
// flush; settled items do not.
func TestBatchUploaderKeepsTransientFailures(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var batch transport.UploadBatch
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			t.Error(err)
		}
		var resp transport.UploadBatchResponse
		if calls.Add(1) == 1 {
			// First flush: accept [0], fail [1] transiently.
			resp = transport.UploadBatchResponse{Accepted: 1, Rejected: 1, Results: []transport.UploadResult{
				{Index: 0, Code: transport.UploadOK},
				{Index: 1, Code: transport.UploadFailed, Error: "hive: journal sync: disk full"},
			}}
		} else {
			if len(batch.Uploads) != 1 || batch.Uploads[0].DeviceID != "d1" {
				t.Errorf("retry flush carried %+v, want just the failed item d1", batch.Uploads)
			}
			resp = transport.UploadBatchResponse{Accepted: len(batch.Uploads)}
			for i := range batch.Uploads {
				resp.Results = append(resp.Results, transport.UploadResult{Index: i, Code: transport.UploadOK})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{BatchSize: 2})
	ctx := context.Background()
	if _, err := u.Add(ctx, up(0)); err != nil {
		t.Fatal(err)
	}
	resp, err := u.Add(ctx, up(1)) // threshold: flush [d0, d1]
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || u.Pending() != 1 {
		t.Fatalf("after partial failure: accepted=%d pending=%d, want 1/1", resp.Accepted, u.Pending())
	}
	resp, err = u.Flush(ctx)
	if err != nil || resp.Accepted != 1 {
		t.Fatalf("retry flush = %+v, %v", resp, err)
	}
	if u.Pending() != 0 {
		t.Errorf("pending after retry = %d, want 0", u.Pending())
	}
}

// TestBatchUploaderSickServerBoundedFlushes: when every flush reports all
// items transiently failed, the uploader re-tries only once per BatchSize
// of fresh data (not on every Add) and sheds oldest-first at MaxBuffered
// instead of growing without bound.
func TestBatchUploaderSickServerBoundedFlushes(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var batch transport.UploadBatch
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			t.Error(err)
		}
		resp := transport.UploadBatchResponse{Rejected: len(batch.Uploads)}
		for i := range batch.Uploads {
			resp.Results = append(resp.Results, transport.UploadResult{
				Index: i, Code: transport.UploadFailed, Error: "journal down",
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{BatchSize: 2, MaxBuffered: 6})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := u.Add(ctx, up(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Adds 1-6: flush at 2 (kept 2, next threshold 4), flush at 4 (kept 4,
	// threshold 6), flush at 6 — one flush per BatchSize of fresh data.
	if got := calls.Load(); got != 3 {
		t.Errorf("server calls after 6 adds = %d, want 3 (one per BatchSize of fresh data)", got)
	}
	if u.Pending() != 6 {
		t.Errorf("pending = %d, want 6 kept", u.Pending())
	}
	// The buffer is at MaxBuffered: further adds shed oldest-first.
	if _, err := u.Add(ctx, up(7)); err != nil {
		t.Fatal(err)
	}
	if u.Pending() != 6 || u.Dropped != 1 {
		t.Errorf("pending/dropped = %d/%d, want 6/1 (oldest shed at the cap)", u.Pending(), u.Dropped)
	}
}

// TestBatchUploaderSemanticRejectionNotRetried: per-item rejections are not
// backpressure — the flush succeeds, the buffer clears, and the response
// carries the verdicts.
func TestBatchUploaderSemanticRejectionNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		resp := transport.UploadBatchResponse{
			Rejected: 1,
			Results:  []transport.UploadResult{{Index: 0, Code: transport.UploadUnknownTask, Error: "unknown task"}},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()
	u := NewBatchUploader(transport.NewClient(srv.URL), UploaderConfig{BatchSize: 1})
	resp, err := u.Add(context.Background(), up(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rejected != 1 || resp.Results[0].Code != transport.UploadUnknownTask {
		t.Errorf("response = %+v", resp)
	}
	if calls.Load() != 1 {
		t.Errorf("server calls = %d, want 1 (no retry on semantic rejection)", calls.Load())
	}
	if u.Pending() != 0 {
		t.Errorf("pending = %d, want 0", u.Pending())
	}
}
