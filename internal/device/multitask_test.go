package device

import (
	"testing"

	"apisense/internal/trace"
)

// TestSequentialTasksShareBattery verifies the paper's multi-experiment
// scenario: one phone serving several tasks drains a single battery, and
// later tasks see the depleted level.
func TestSequentialTasksShareBattery(t *testing.T) {
	d := newDevice(t, Config{})
	before := d.Battery().Level()
	if _, err := d.RunTask(spec(gpsTask, 60)); err != nil {
		t.Fatal(err)
	}
	mid := d.Battery().Level()
	if mid >= before {
		t.Fatalf("battery did not drain: %v -> %v", before, mid)
	}
	s2 := spec(`schedule.every(600, function() { dataset.save({sensor: 'battery', level: device.battery()}); });`, 60)
	s2.ID = "t-2"
	s2.Sensors = []string{"battery"}
	res, err := d.RunTask(s2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Battery().Level() >= mid {
		t.Fatal("second task did not drain further")
	}
	// The second task observes the already-drained level.
	first := res.Upload.Records[0].Data["level"].(float64)
	if first > mid {
		t.Errorf("second task saw battery %v, but level was already %v", first, mid)
	}
}

// TestTaskWithJSONConfig exercises the JSON stdlib from a task script: the
// deployment ships thresholds as a JSON string, the script parses it.
func TestTaskWithJSONConfig(t *testing.T) {
	src := `
var cfg = JSON.parse('{"maxSpeed": 2.0, "tag": "slow-fix"}');
sensor.gps.onLocationChanged(function(loc) {
  if (loc.speed < cfg.maxSpeed) {
    dataset.save({lat: loc.lat, lon: loc.lon, tag: cfg.tag});
  }
});
`
	d := newDevice(t, Config{})
	res, err := d.RunTask(spec(src, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Upload.Records) == 0 {
		t.Fatal("no records collected")
	}
	for _, r := range res.Upload.Records {
		if r.Data["tag"] != "slow-fix" {
			t.Fatalf("tag = %v", r.Data["tag"])
		}
	}
}

// TestRunTaskRespectsMovementGaps: a movement trace with a hole (sensor off)
// produces no fixes inside the hole.
func TestRunTaskRespectsMovementGaps(t *testing.T) {
	move := movement()
	// Remove 20 minutes from the middle.
	var gapped = *move
	gapped.Records = append(append([]trace.Record(nil), move.Records[:20]...), move.Records[40:]...)
	d := newDevice(t, Config{Movement: &gapped})
	res, err := d.RunTask(spec(gpsTask, 60))
	if err != nil {
		t.Fatal(err)
	}
	// The linear interpolation in Trajectory.At covers the gap, so fixes
	// still appear but lie on the straight chord between the gap edges —
	// the count must equal the full window.
	if res.Ticks != 61 {
		t.Errorf("ticks = %d, want 61 (interpolated across gap)", res.Ticks)
	}
}
