package device

import (
	"errors"
	"strings"
	"testing"
	"time"

	"apisense/internal/filter"
	"apisense/internal/geo"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 9, 0, 0, 0, time.UTC)
)

// movement builds a one-hour eastbound walk at 1.5 m/s, one point a minute.
func movement() *trace.Trajectory {
	tr := &trace.Trajectory{User: "alice"}
	for i := 0; i <= 60; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: t0.Add(time.Duration(i) * time.Minute),
			Pos:  geo.Translate(lyon, 90*float64(i), 0),
		})
	}
	return tr
}

const gpsTask = `
sensor.gps.onLocationChanged(function(loc) {
  dataset.save({lat: loc.lat, lon: loc.lon, speed: loc.speed});
});
`

func newDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	if cfg.ID == "" {
		cfg.ID = "dev-1"
	}
	if cfg.User == "" {
		cfg.User = "alice"
	}
	if cfg.Movement == nil {
		cfg.Movement = movement()
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func spec(scriptSrc string, period int) transport.TaskSpec {
	return transport.TaskSpec{
		ID: "t-1", Name: "test-task", Author: "lab",
		Script: scriptSrc, PeriodSeconds: period, Sensors: []string{"gps"},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{User: "u", Movement: movement()}); err == nil {
		t.Error("missing ID should fail")
	}
	if _, err := New(Config{ID: "d", Movement: movement()}); err == nil {
		t.Error("missing User should fail")
	}
	if _, err := New(Config{ID: "d", User: "u"}); err == nil {
		t.Error("missing Movement should fail")
	}
	short := &trace.Trajectory{User: "u", Records: movement().Records[:1]}
	if _, err := New(Config{ID: "d", User: "u", Movement: short}); err == nil {
		t.Error("single-record movement should fail")
	}
}

func TestRunTaskCollectsGPS(t *testing.T) {
	d := newDevice(t, Config{})
	res, err := d.RunTask(spec(gpsTask, 60))
	if err != nil {
		t.Fatal(err)
	}
	// One fix a minute over one hour: 61 ticks.
	if res.Ticks != 61 {
		t.Errorf("ticks = %d, want 61", res.Ticks)
	}
	if len(res.Upload.Records) != 61 {
		t.Fatalf("records = %d, want 61", len(res.Upload.Records))
	}
	first := res.Upload.Records[0]
	if first.Sensor != "gps" {
		t.Errorf("sensor = %q", first.Sensor)
	}
	if lat, ok := first.Data["lat"].(float64); !ok || lat == 0 {
		t.Errorf("lat = %v", first.Data["lat"])
	}
	// Speed is ~1.5 m/s after the first tick.
	v, ok := res.Upload.Records[5].Data["speed"].(float64)
	if !ok || v < 1.2 || v > 1.8 {
		t.Errorf("speed = %v, want ~1.5", v)
	}
}

func TestRunTaskValidatesSpec(t *testing.T) {
	d := newDevice(t, Config{})
	bad := spec(gpsTask, 0)
	if _, err := d.RunTask(bad); err == nil {
		t.Error("zero period should fail")
	}
}

func TestRunTaskSensorOptOut(t *testing.T) {
	d := newDevice(t, Config{SharedSensors: []string{"battery"}})
	_, err := d.RunTask(spec(gpsTask, 60))
	if !errors.Is(err, ErrSensorsNotShared) {
		t.Errorf("err = %v, want ErrSensorsNotShared", err)
	}
}

func TestRunTaskScriptErrorSurfaces(t *testing.T) {
	d := newDevice(t, Config{})
	if _, err := d.RunTask(spec("this is not a script", 60)); err == nil {
		t.Error("syntax error should surface")
	}
	bad := `sensor.gps.onLocationChanged(function(loc) { boom(); });`
	if _, err := d.RunTask(spec(bad, 60)); err == nil {
		t.Error("handler runtime error should surface")
	}
}

func TestMaxRecordsCap(t *testing.T) {
	d := newDevice(t, Config{})
	s := spec(gpsTask, 60)
	s.MaxRecords = 10
	res, err := d.RunTask(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Upload.Records) != 10 {
		t.Errorf("records = %d, want 10 (capped)", len(res.Upload.Records))
	}
}

func TestFilterChainApplied(t *testing.T) {
	// Zone exclusion around the start point: early fixes dropped.
	chain := filter.NewChain(&filter.ZoneExclusion{
		Centers: []geo.Point{lyon},
		Radius:  1000,
	})
	d := newDevice(t, Config{Filter: chain})
	res, err := d.RunTask(spec(gpsTask, 60))
	if err != nil {
		t.Fatal(err)
	}
	// 90 m/min: fixes within 1000 m of start = t0..t11 (12 fixes) dropped.
	if res.Dropped < 10 {
		t.Errorf("dropped = %d, want >= 10", res.Dropped)
	}
	if len(res.Upload.Records)+res.Dropped != res.Ticks {
		t.Errorf("records+dropped = %d, want %d ticks",
			len(res.Upload.Records)+res.Dropped, res.Ticks)
	}
	for _, r := range res.Upload.Records {
		pos := geo.Point{Lat: r.Data["lat"].(float64), Lon: r.Data["lon"].(float64)}
		if geo.Distance(pos, lyon) <= 1000 {
			t.Fatalf("record inside excluded zone leaked: %v", pos)
		}
	}
}

func TestBatteryDrainsAndKillsRun(t *testing.T) {
	b := NewBattery(1) // nearly dead
	b.DrainPerFix = 0.1
	d := newDevice(t, Config{Battery: b})
	res, err := d.RunTask(spec(gpsTask, 60))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Battery().Dead() {
		t.Errorf("battery = %v, want dead", d.Battery().Level())
	}
	if res.Ticks >= 61 {
		t.Errorf("run should stop early, got %d ticks", res.Ticks)
	}
	foundLog := false
	for _, l := range res.Upload.Logs {
		if strings.Contains(l, "battery exhausted") {
			foundLog = true
		}
	}
	if !foundLog {
		t.Error("battery exhaustion not logged")
	}
}

func TestBatteryModel(t *testing.T) {
	b := NewBattery(150)
	if b.Level() != 100 {
		t.Errorf("level clamped to %v, want 100", b.Level())
	}
	b.Drain(30)
	if b.Level() != 70 {
		t.Errorf("level = %v, want 70", b.Level())
	}
	b.Drain(-5) // ignored
	if b.Level() != 70 {
		t.Errorf("negative drain changed level to %v", b.Level())
	}
	b.Drain(1000)
	if !b.Dead() || b.Level() != 0 {
		t.Errorf("level = %v, want 0/dead", b.Level())
	}
	if NewBattery(-5).Level() != 0 {
		t.Error("negative init not clamped")
	}
}

func TestScheduleEveryTimer(t *testing.T) {
	src := `
var n = 0;
schedule.every(300, function() {
  n += 1;
  dataset.save({sensor: 'battery', level: sensor.battery.level(), tick: n});
});
`
	d := newDevice(t, Config{})
	s := spec(src, 60)
	s.Sensors = []string{"battery"}
	res, err := d.RunTask(s)
	if err != nil {
		t.Fatal(err)
	}
	// One hour, 5-minute timer, first firing after one period: ~11.
	if n := len(res.Upload.Records); n < 10 || n > 12 {
		t.Errorf("timer fired %d times, want ~11", n)
	}
	if res.Upload.Records[0].Sensor != "battery" {
		t.Errorf("sensor = %q", res.Upload.Records[0].Sensor)
	}
	if lvl := res.Upload.Records[0].Data["level"].(float64); lvl <= 0 || lvl > 100 {
		t.Errorf("level = %v", lvl)
	}
}

func TestNetworkSignalDeterministicAndBounded(t *testing.T) {
	src := `
sensor.gps.onLocationChanged(function(loc) {
  dataset.save({sensor: 'network', lat: loc.lat, lon: loc.lon, signal: sensor.network.signal()});
});
`
	run := func() []transport.UploadRecord {
		d := newDevice(t, Config{})
		s := spec(src, 60)
		s.Sensors = []string{"gps", "network"}
		res, err := d.RunTask(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Upload.Records
	}
	a := run()
	b := run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	varied := false
	for i := range a {
		sa := a[i].Data["signal"].(float64)
		sb := b[i].Data["signal"].(float64)
		if sa != sb {
			t.Fatal("network signal not deterministic")
		}
		if sa < 0 || sa > 1 {
			t.Fatalf("signal %v out of [0,1]", sa)
		}
		if i > 0 && a[i].Data["signal"] != a[0].Data["signal"] {
			varied = true
		}
	}
	if !varied {
		t.Error("signal constant along the path; should vary spatially")
	}
}

func TestInfoAndAccessors(t *testing.T) {
	d := newDevice(t, Config{})
	info := d.Info()
	if info.ID != "dev-1" || info.User != "alice" {
		t.Errorf("info = %+v", info)
	}
	if info.Battery != 100 {
		t.Errorf("battery = %v", info.Battery)
	}
	if len(info.Sensors) != len(AllSensors) {
		t.Errorf("sensors = %v", info.Sensors)
	}
	if info.Lat == 0 || info.Lon == 0 {
		t.Error("registration position missing")
	}
	if d.ID() != "dev-1" || d.User() != "alice" {
		t.Error("accessors wrong")
	}
}

func TestSampleAt(t *testing.T) {
	d := newDevice(t, Config{})
	rec, ok := d.SampleAt(t0.Add(30 * time.Minute))
	if !ok {
		t.Fatal("sample failed")
	}
	if rec.Sensor != "gps" || rec.Data["lat"] == nil {
		t.Errorf("sample = %+v", rec)
	}
	if _, ok := d.SampleAt(t0.Add(-time.Hour)); ok {
		t.Error("sampling before movement should fail")
	}
	dead := newDevice(t, Config{ID: "dev-2", Battery: NewBattery(0)})
	if _, ok := dead.SampleAt(t0.Add(time.Minute)); ok {
		t.Error("dead device sampled")
	}
}

func TestLogBuiltin(t *testing.T) {
	d := newDevice(t, Config{})
	src := `log('starting', 42); sensor.gps.onLocationChanged(function(l){});`
	res, err := d.RunTask(spec(src, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Upload.Logs) == 0 || res.Upload.Logs[0] != "starting 42" {
		t.Errorf("logs = %v", res.Upload.Logs)
	}
}
