// Package device simulates the APISENSE mobile runtime: the component that
// receives crowd-sensing task scripts from the Hive, executes them against
// the phone's sensors, applies the user's local privacy filters, and
// uploads the resulting dataset (§2 of the paper).
//
// The simulation is driven by a ground-truth movement trajectory (from
// internal/mobgen or a recorded trace): the device "moves" along it in
// virtual time, producing GPS fixes, battery readings and a synthetic
// network-quality signal, exactly the sensor surface the published APISENSE
// task examples use.
package device

import (
	"errors"
	"fmt"
	"math"
	"time"

	"apisense/internal/filter"
	"apisense/internal/geo"
	"apisense/internal/script"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

// Config assembles a simulated device.
type Config struct {
	// ID is the device identifier (required).
	ID string
	// User is the owning contributor (required).
	User string
	// Movement is the ground-truth trajectory the device follows
	// (required, at least two records).
	Movement *trace.Trajectory
	// Filter is the user's device-side privacy chain (nil means no
	// filtering).
	Filter *filter.Chain
	// Battery is the battery model (nil means a fresh 100% battery).
	Battery *Battery
	// SharedSensors lists the sensors the user shares with the platform.
	// Nil means all simulated sensors (gps, battery, network).
	SharedSensors []string
}

// Device is one simulated phone.
type Device struct {
	id      string
	user    string
	move    *trace.Trajectory
	chain   *filter.Chain
	battery *Battery
	sensors []string
}

// AllSensors is the sensor surface the simulator implements.
var AllSensors = []string{"gps", "battery", "network"}

// New builds a device.
func New(cfg Config) (*Device, error) {
	if cfg.ID == "" || cfg.User == "" {
		return nil, fmt.Errorf("device: ID and User are required")
	}
	if cfg.Movement == nil || cfg.Movement.Len() < 2 {
		return nil, fmt.Errorf("device: Movement with at least two records is required")
	}
	d := &Device{
		id:      cfg.ID,
		user:    cfg.User,
		move:    cfg.Movement,
		chain:   cfg.Filter,
		battery: cfg.Battery,
		sensors: cfg.SharedSensors,
	}
	if d.battery == nil {
		d.battery = NewBattery(100)
	}
	if d.sensors == nil {
		d.sensors = append([]string(nil), AllSensors...)
	}
	if d.chain == nil {
		d.chain = filter.NewChain()
	}
	return d, nil
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// User returns the owning contributor.
func (d *Device) User() string { return d.user }

// Battery returns the battery model.
func (d *Device) Battery() *Battery { return d.battery }

// Info returns the registration record sent to the Hive.
func (d *Device) Info() transport.DeviceInfo {
	pos := d.move.Records[0].Pos
	return transport.DeviceInfo{
		ID:      d.id,
		User:    d.user,
		Sensors: append([]string(nil), d.sensors...),
		Battery: d.battery.Level(),
		Lat:     pos.Lat,
		Lon:     pos.Lon,
	}
}

// PositionAt returns the ground-truth position at ts.
func (d *Device) PositionAt(ts time.Time) (geo.Point, bool) { return d.move.At(ts) }

// SampleAt produces one filtered GPS record at ts, draining the battery.
// ok is false when the device cannot sample (off trajectory, dead battery,
// or the filter dropped the record).
func (d *Device) SampleAt(ts time.Time) (filter.Record, bool) {
	if d.battery.Dead() {
		return filter.Record{}, false
	}
	pos, inRange := d.move.At(ts)
	if !inRange {
		return filter.Record{}, false
	}
	d.battery.Drain(d.battery.DrainPerFix)
	rec := filter.Record{
		Sensor: "gps",
		Time:   ts,
		Data: map[string]any{
			"lat": pos.Lat,
			"lon": pos.Lon,
		},
	}
	return d.chain.Apply(rec)
}

// networkSignal is a deterministic, spatially-smooth synthetic signal
// quality in [0,1], standing in for the operator coverage maps used by the
// network-quality applications the paper's introduction motivates.
func networkSignal(pos geo.Point) float64 {
	pr := geo.NewProjection(geo.Point{Lat: 45.7640, Lon: 4.8357})
	xy := pr.Forward(pos)
	v := 0.5 + 0.25*math.Sin(xy.X/900) + 0.25*math.Cos(xy.Y/700)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// RunResult is the outcome of executing one task on one device.
type RunResult struct {
	// Upload is the filtered dataset produced by the task.
	Upload transport.Upload
	// Ticks is the number of sampling iterations executed.
	Ticks int
	// Dropped counts records suppressed by the privacy filter chain.
	Dropped int
}

// RunTask executes a task script over the device's whole movement window in
// virtual time. The script's sensor handlers fire once per sampling period;
// records it saves pass through the privacy chain before entering the
// upload.
func (d *Device) RunTask(spec transport.TaskSpec) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("device %s: %w", d.id, err)
	}
	if !d.hasSensors(spec.Sensors) {
		return nil, fmt.Errorf("device %s: %w", d.id, ErrSensorsNotShared)
	}

	res := &RunResult{Upload: transport.Upload{TaskID: spec.ID, DeviceID: d.id}}
	interp := script.NewInterp()
	rt := &runtime{dev: d, spec: spec, res: res, interp: interp}
	rt.bind()
	if err := interp.RunSource(spec.Script); err != nil {
		return nil, fmt.Errorf("device %s: task %q: %w", d.id, spec.Name, err)
	}

	period := time.Duration(spec.PeriodSeconds) * time.Second
	start := d.move.Records[0].Time
	end := d.move.Records[d.move.Len()-1].Time
	prevPos, _ := d.move.At(start)
	prevTime := start
	for ts := start; !ts.After(end); ts = ts.Add(period) {
		if d.battery.Dead() {
			rt.log(fmt.Sprintf("battery exhausted at %s", ts.Format(time.RFC3339)))
			break
		}
		if spec.MaxRecords > 0 && len(res.Upload.Records) >= spec.MaxRecords {
			break
		}
		pos, ok := d.move.At(ts)
		if !ok {
			continue
		}
		res.Ticks++
		d.battery.Drain(d.battery.DrainPerFix + d.battery.IdlePerHour*period.Hours())

		speed := 0.0
		if dt := ts.Sub(prevTime).Seconds(); dt > 0 {
			speed = geo.Distance(prevPos, pos) / dt
		}
		rt.now = ts
		rt.pos = pos
		if err := rt.fireLocation(pos, speed); err != nil {
			return nil, fmt.Errorf("device %s: task %q handler: %w", d.id, spec.Name, err)
		}
		if err := rt.fireTimers(ts); err != nil {
			return nil, fmt.Errorf("device %s: task %q timer: %w", d.id, spec.Name, err)
		}
		prevPos, prevTime = pos, ts
	}
	return res, nil
}

// ErrSensorsNotShared marks tasks requesting sensors the user opted out of.
var ErrSensorsNotShared = errors.New("device: required sensors not shared")

func (d *Device) hasSensors(required []string) bool {
	have := make(map[string]bool, len(d.sensors))
	for _, s := range d.sensors {
		have[s] = true
	}
	for _, s := range required {
		if !have[s] {
			return false
		}
	}
	return true
}

// runtime wires the script host API for one task execution.
type runtime struct {
	dev    *Device
	spec   transport.TaskSpec
	res    *RunResult
	interp *script.Interp

	now time.Time
	pos geo.Point

	locationHandlers []script.Value
	timers           []*timer
}

type timer struct {
	period time.Duration
	next   time.Time
	fn     script.Value
}

func (rt *runtime) log(msg string) {
	rt.res.Upload.Logs = append(rt.res.Upload.Logs, msg)
}

// bind installs the sensor/dataset/device host objects.
func (rt *runtime) bind() {
	gps := script.NewObject().Set("onLocationChanged", script.BuiltinValue(func(args []script.Value) (script.Value, error) {
		if len(args) != 1 || args[0].Type() != script.TypeFunction {
			return script.Null, errors.New("sensor.gps.onLocationChanged expects a handler function")
		}
		rt.locationHandlers = append(rt.locationHandlers, args[0])
		return script.Null, nil
	}))
	battery := script.NewObject().Set("level", script.BuiltinValue(func([]script.Value) (script.Value, error) {
		return script.Number(rt.dev.battery.Level()), nil
	}))
	network := script.NewObject().Set("signal", script.BuiltinValue(func([]script.Value) (script.Value, error) {
		return script.Number(networkSignal(rt.pos)), nil
	}))
	sensor := script.NewObject().
		Set("gps", script.ObjectValue(gps)).
		Set("battery", script.ObjectValue(battery)).
		Set("network", script.ObjectValue(network))
	rt.interp.Define("sensor", script.ObjectValue(sensor))

	dataset := script.NewObject().Set("save", script.BuiltinValue(func(args []script.Value) (script.Value, error) {
		if len(args) != 1 || args[0].Type() != script.TypeObject {
			return script.Null, errors.New("dataset.save expects an object")
		}
		rt.save(args[0])
		return script.Null, nil
	}))
	rt.interp.Define("dataset", script.ObjectValue(dataset))

	devObj := script.NewObject().
		Set("id", script.String(rt.dev.id)).
		Set("battery", script.BuiltinValue(func([]script.Value) (script.Value, error) {
			return script.Number(rt.dev.battery.Level()), nil
		}))
	rt.interp.Define("device", script.ObjectValue(devObj))

	timeObj := script.NewObject().Set("now", script.BuiltinValue(func([]script.Value) (script.Value, error) {
		return script.Number(float64(rt.now.UnixMilli())), nil
	}))
	rt.interp.Define("time", script.ObjectValue(timeObj))

	schedule := script.NewObject().Set("every", script.BuiltinValue(func(args []script.Value) (script.Value, error) {
		if len(args) != 2 || args[0].Type() != script.TypeNumber || args[1].Type() != script.TypeFunction {
			return script.Null, errors.New("schedule.every expects (seconds, handler)")
		}
		period := time.Duration(args[0].Num() * float64(time.Second))
		if period <= 0 {
			return script.Null, errors.New("schedule.every period must be positive")
		}
		rt.timers = append(rt.timers, &timer{period: period, fn: args[1]})
		return script.Null, nil
	}))
	rt.interp.Define("schedule", script.ObjectValue(schedule))

	rt.interp.Define("log", script.BuiltinValue(func(args []script.Value) (script.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.String()
		}
		rt.log(joinSpace(parts))
		return script.Null, nil
	}))
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// save pushes one script object through the privacy chain into the upload.
func (rt *runtime) save(v script.Value) {
	data, ok := v.ToGo().(map[string]any)
	if !ok {
		return
	}
	sensorName := "task"
	if s, ok := data["sensor"].(string); ok && s != "" {
		sensorName = s
	} else if _, hasLat := data["lat"]; hasLat {
		sensorName = "gps"
	}
	rec := filter.Record{Sensor: sensorName, Time: rt.now, Data: data}
	filtered, keep := rt.dev.chain.Apply(rec)
	if !keep {
		rt.res.Dropped++
		return
	}
	rt.dev.battery.Drain(rt.dev.battery.DrainPerSave)
	rt.res.Upload.Records = append(rt.res.Upload.Records, transport.UploadRecord{
		Sensor:     filtered.Sensor,
		TimeMillis: filtered.Time.UnixMilli(),
		Data:       filtered.Data,
	})
}

func (rt *runtime) fireLocation(pos geo.Point, speed float64) error {
	if len(rt.locationHandlers) == 0 {
		return nil
	}
	loc := script.NewObject().
		Set("lat", script.Number(pos.Lat)).
		Set("lon", script.Number(pos.Lon)).
		Set("speed", script.Number(speed)).
		Set("time", script.Number(float64(rt.now.UnixMilli())))
	arg := []script.Value{script.ObjectValue(loc)}
	for _, h := range rt.locationHandlers {
		if _, err := rt.interp.CallFunction(h, arg); err != nil {
			return err
		}
	}
	return nil
}

func (rt *runtime) fireTimers(ts time.Time) error {
	// Timers fire in registration order, deterministically.
	for _, t := range rt.timers {
		if t.next.IsZero() {
			t.next = ts.Add(t.period)
			continue
		}
		for !t.next.After(ts) {
			if _, err := rt.interp.CallFunction(t.fn, nil); err != nil {
				return err
			}
			t.next = t.next.Add(t.period)
		}
	}
	return nil
}
