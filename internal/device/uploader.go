package device

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// UploaderConfig tunes a BatchUploader. The zero value gets sensible
// defaults.
type UploaderConfig struct {
	// BatchSize is the flush threshold: Add flushes automatically once
	// this many uploads are buffered. Default 16.
	BatchSize int
	// MaxRetries bounds how many times one flush is resubmitted after a
	// 429 (backpressured ingest queue) before giving up. Default 5.
	MaxRetries int
	// BaseDelay seeds the exponential backoff between retries; the
	// server's Retry-After hint overrides it when larger. Default 250ms.
	BaseDelay time.Duration
	// MaxBuffered bounds the pending buffer on a device with limited
	// memory: when a persistently failing server keeps items buffered
	// past the bound, the OLDEST uploads are shed (counted in Dropped).
	// Default 64 * BatchSize.
	MaxBuffered int
	// Seed makes the retry jitter deterministic (0 picks a fixed seed, so
	// simulations stay reproducible).
	Seed int64
	// Sleep is the wait primitive, injectable in tests. The default
	// honours ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Tracer, when non-nil, records one device.flush span per Flush.
	// Independent of the tracer, every flush stamps a W3C traceparent
	// header derived from Seed — the same identity across 429 retries —
	// so the server's spans for all attempts join one trace.
	Tracer *otrace.Tracer
}

func (c UploaderConfig) withDefaults() UploaderConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 250 * time.Millisecond
	}
	if c.MaxBuffered <= 0 {
		c.MaxBuffered = 64 * c.BatchSize
	}
	if c.MaxBuffered < c.BatchSize {
		// A cap below the flush threshold would shed everything before a
		// flush could ever trigger.
		c.MaxBuffered = c.BatchSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// BatchUploader buffers task uploads device-side and flushes them to the
// Hive's batch endpoint, so a fleet produces a few large ingest batches
// instead of a thundering herd of single-upload requests. When the Hive's
// queue pushes back (HTTP 429) the flush retries with jittered exponential
// backoff, honouring the server's Retry-After hint — the jitter decorrelates
// a fleet that was rejected together so it does not stampede back together.
//
// Not safe for concurrent use; give each uploading goroutine its own
// BatchUploader.
type BatchUploader struct {
	client *transport.Client
	cfg    UploaderConfig
	rng    *rand.Rand
	// idrng draws flush trace identities. Separate from rng so enabling
	// tracing never shifts the backoff jitter sequence (simulations stay
	// bit-identical), seeded from the same deterministic Seed.
	idrng   *rand.Rand
	pending []transport.Upload
	// flushAt is the buffer length that triggers the next automatic
	// flush. Normally BatchSize; after a flush that kept transiently
	// failed items it is raised to kept+BatchSize, so a sick server is
	// re-tried once per BatchSize of fresh data instead of on every Add.
	flushAt int
	// Retries counts backpressure retries performed, for logging.
	Retries int
	// Dropped counts uploads shed oldest-first because the buffer hit
	// MaxBuffered while the server kept failing.
	Dropped int
}

// NewBatchUploader builds an uploader over the Hive client.
func NewBatchUploader(client *transport.Client, cfg UploaderConfig) *BatchUploader {
	cfg = cfg.withDefaults()
	return &BatchUploader{
		client:  client,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		idrng:   rand.New(rand.NewSource(cfg.Seed ^ 0x74726163)), // distinct stream for trace IDs
		flushAt: cfg.BatchSize,
	}
}

// Pending reports how many uploads are buffered.
func (u *BatchUploader) Pending() int { return len(u.pending) }

// Add buffers one upload, flushing automatically when the buffer reaches
// the flush threshold (BatchSize of fresh data). The response is nil when
// no flush happened. When the buffer hits MaxBuffered the oldest uploads
// are shed (see Dropped) instead of growing without bound.
func (u *BatchUploader) Add(ctx context.Context, up transport.Upload) (*transport.UploadBatchResponse, error) {
	u.pending = append(u.pending, up)
	if over := len(u.pending) - u.cfg.MaxBuffered; over > 0 {
		u.pending = append(u.pending[:0], u.pending[over:]...)
		u.Dropped += over
	}
	if len(u.pending) < u.flushAt {
		return nil, nil
	}
	return u.Flush(ctx)
}

// Flush submits the buffered uploads as one batch. On a response, items
// whose verdict is a semantic rejection (unknown task/device, not
// assigned, over the cap — errors the device cannot fix by retrying) are
// dropped with the accepted ones; items the server marked "failed" (a
// transient storage/journal error) stay buffered for a later Flush. On
// backpressure (429) the whole flush is retried up to MaxRetries times
// with jittered backoff; if the queue is still full the buffer is kept so
// a later Flush can try again, and the transport error is returned.
func (u *BatchUploader) Flush(ctx context.Context) (*transport.UploadBatchResponse, error) {
	if len(u.pending) == 0 {
		return &transport.UploadBatchResponse{}, nil
	}
	// One trace identity per flush, drawn from the seeded id stream: the
	// traceparent header is identical across this flush's 429 retries, so
	// the server-side spans of every attempt land in one trace.
	sc := otrace.NewSpanContext(u.idrng)
	var sp *otrace.ActiveSpan
	if u.cfg.Tracer != nil {
		ctx, sp = u.cfg.Tracer.StartWith(ctx, "device.flush", sc, otrace.Int("uploads", len(u.pending)))
	} else {
		ctx = otrace.ContextWithSpanContext(ctx, sc)
	}
	batch := transport.UploadBatch{Uploads: u.pending}
	var resp transport.UploadBatchResponse
	for attempt := 0; ; attempt++ {
		err := u.client.Do(ctx, http.MethodPost, "/api/uploads/batch", batch, &resp)
		if err == nil {
			// Keep transiently failed items (fresh slice: batch.Uploads
			// aliases u.pending); everything else is settled. Raising the
			// flush threshold past the kept tail stops a persistently sick
			// server from being re-flushed on every subsequent Add.
			var kept []transport.Upload
			for _, r := range resp.Results {
				if r.Code == transport.UploadFailed && r.Index >= 0 && r.Index < len(batch.Uploads) {
					kept = append(kept, batch.Uploads[r.Index])
				}
			}
			u.pending = kept
			u.deferFlush()
			if sp != nil {
				sp.SetAttr(otrace.Int("retries", attempt),
					otrace.Int("accepted", resp.Accepted), otrace.Int("rejected", resp.Rejected))
				sp.End()
			}
			return &resp, nil
		}
		var status *transport.ErrStatus
		if !errors.As(err, &status) || status.Code != http.StatusTooManyRequests || attempt >= u.cfg.MaxRetries {
			// Give up, keeping the buffer — but raise the auto-flush
			// threshold past it, or every subsequent Add would re-run a
			// full retry cycle against the saturated server.
			u.deferFlush()
			if sp != nil {
				sp.SetAttr(otrace.Int("retries", attempt))
				sp.SetErr(flushErrCode(err))
				sp.End()
			}
			return nil, fmt.Errorf("device: flush %d uploads: %w", len(u.pending), err)
		}
		u.Retries++
		if serr := u.cfg.Sleep(ctx, u.backoff(attempt, status.RetryAfter)); serr != nil {
			u.deferFlush()
			if sp != nil {
				sp.SetAttr(otrace.Int("retries", attempt))
				sp.SetErr(flushErrCode(serr))
				sp.End()
			}
			return nil, serr
		}
	}
}

// deferFlush raises the auto-flush threshold one BatchSize past whatever
// stayed buffered, so Add re-tries a struggling server once per BatchSize
// of fresh data instead of on every call. Clamped so the threshold stays
// reachable; at the MaxBuffered cap the device is already shedding data,
// and trying the server on every Add is then the right amount of
// aggressive.
func (u *BatchUploader) deferFlush() {
	u.flushAt = len(u.pending) + u.cfg.BatchSize
	if u.flushAt > u.cfg.MaxBuffered {
		u.flushAt = u.cfg.MaxBuffered
	}
}

// flushErrCode renders a flush failure as a stable span error code: the
// apierr code when the error carries one (rehydrated from the server's
// JSON error body), a short static label otherwise.
func flushErrCode(err error) string {
	if code := apierr.Code(err); code != "" {
		return code
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "device.flush_interrupted"
	}
	return "device.flush_failed"
}

// maxBackoff caps one retry wait; beyond it the exponential stops growing.
const maxBackoff = 30 * time.Second

// backoff picks the wait before retry `attempt`: the larger of the server's
// Retry-After hint and the exponential base (capped at maxBackoff), plus
// up to 50% random jitter.
func (u *BatchUploader) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := u.cfg.BaseDelay
	for i := 0; i < attempt && base < maxBackoff; i++ {
		base *= 2
	}
	if retryAfter > base {
		base = retryAfter
	}
	if base > maxBackoff {
		base = maxBackoff
	}
	return base + time.Duration(u.rng.Int63n(int64(base)/2+1))
}
