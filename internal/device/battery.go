package device

import "fmt"

// Battery models a device battery in percent of capacity. Sensing and
// uploading drain it; an exhausted device stops contributing. The model is
// what the energy-aware virtual-sensor strategy (§2 of the paper)
// optimises against.
type Battery struct {
	level float64 // 0..100

	// DrainPerFix is the cost of one GPS fix, in percent.
	DrainPerFix float64
	// DrainPerSave is the cost of saving+uploading one record.
	DrainPerSave float64
	// IdlePerHour is the baseline drain per simulated hour.
	IdlePerHour float64
}

// NewBattery returns a battery at the given initial level (clamped to
// [0,100]) with the default drain profile.
func NewBattery(level float64) *Battery {
	if level < 0 {
		level = 0
	}
	if level > 100 {
		level = 100
	}
	return &Battery{
		level:        level,
		DrainPerFix:  0.01,
		DrainPerSave: 0.02,
		IdlePerHour:  0.2,
	}
}

// Level returns the current charge in percent.
func (b *Battery) Level() float64 { return b.level }

// Dead reports whether the battery is exhausted.
func (b *Battery) Dead() bool { return b.level <= 0 }

// Drain removes amount percent of charge (never below zero).
func (b *Battery) Drain(amount float64) {
	if amount < 0 {
		return
	}
	b.level -= amount
	if b.level < 0 {
		b.level = 0
	}
}

// String implements fmt.Stringer.
func (b *Battery) String() string { return fmt.Sprintf("%.1f%%", b.level) }
