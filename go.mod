module apisense

go 1.23
