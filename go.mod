module apisense

go 1.24
